// integration_sweep walks the paper's integration ladder (Figure 10) on the
// 8-processor machine — Base, +L2, +MC, +CC/NR — and then uses the
// constructive crossing model to ask a question the paper could not: which
// single component cost has the most leverage on OLTP performance?
//
//	go run ./examples/integration_sweep
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions()
	opt.MeasureTxns = 800

	fmt.Println("Successive chip-level integration, 8 processors (paper Figure 10):")
	// The four rungs are independent simulations; fan them across the worker
	// pool (Workers=0 means GOMAXPROCS) and get the results back in order.
	ladder := opt.RunMany([]oltpsim.Config{
		oltpsim.BaseConfig(8, 8*oltpsim.MB, 1),
		oltpsim.IntegratedL2Config(8, 2*oltpsim.MB, 8, oltpsim.OnChipSRAM),
		oltpsim.L2MCConfig(8, 2*oltpsim.MB, 8),
		oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8),
	})
	base := ladder[0]
	for i := range ladder {
		r := &ladder[i]
		fmt.Printf("  %-12s %8.0f cycles/txn  (%.2fx vs Base)\n",
			r.Name, r.CyclesPerTxn(), r.Speedup(&base))
	}

	// Leverage analysis: perturb one component of the crossing model at a
	// time and re-derive the full-integration latency table.
	fmt.Println("\nComponent leverage (full integration, +20 cycles on one component):")
	perturb := []struct {
		name  string
		apply func(*oltpsim.CrossingModel)
	}{
		{"L2 array access", func(m *oltpsim.CrossingModel) { m.IntSRAM += 20 }},
		{"memory core", func(m *oltpsim.CrossingModel) { m.MemCore += 20 }},
		{"network hop", func(m *oltpsim.CrossingModel) { m.LinkHop += 20 }},
		{"owner probe", func(m *oltpsim.CrossingModel) { m.OwnerProbe += 20 }},
	}
	ref := ladder[3]
	var perturbed []oltpsim.Config
	for _, p := range perturb {
		m := oltpsim.DefaultCrossingModel()
		p.apply(&m)
		lt := m.Derive(oltpsim.FullIntegration, 8, oltpsim.OnChipSRAM)
		cfg := oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8)
		cfg.LatencyOverride = &lt
		cfg.Name = "All +" + p.name
		perturbed = append(perturbed, cfg)
	}
	for i, r := range opt.RunMany(perturbed) {
		fmt.Printf("  +20cy %-16s -> %6.0f cycles/txn (%+.1f%%)\n",
			perturb[i].name, r.CyclesPerTxn(), 100*(r.CyclesPerTxn()/ref.CyclesPerTxn()-1))
	}
	fmt.Println("\nAs the paper argues, a 3-hop path component (network hop, owner probe)")
	fmt.Println("moves multiprocessor OLTP far more than local-memory components.")
}
