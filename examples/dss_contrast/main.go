// dss_contrast reproduces the paper's framing claim (Section 1): decision
// support is "relatively insensitive to memory system performance", which is
// exactly why the paper studies OLTP. The example runs the same chip-level
// integration ladder on both workloads.
//
//	go run ./examples/dss_contrast
package main

import (
	"fmt"

	"oltpsim"
)

func runOLTP(cfg oltpsim.Config) oltpsim.Result {
	opt := oltpsim.QuickOptions()
	opt.MeasureTxns = 600
	return opt.Run(cfg)
}

func runDSS(cfg oltpsim.Config) oltpsim.Result {
	// Full-size 400 MB account table: scanner partitions sit ~25 MB apart,
	// so no L2 under study can capture the stream (shrinking the table lets
	// a big off-chip cache catch inter-scanner reuse and muddies the point).
	p := oltpsim.DefaultDSSParams(cfg.Processors)
	sys := oltpsim.MustNewSystem(cfg, oltpsim.MustNewDSSWorkload(p))
	return sys.Run(80, 400)
}

func main() {
	base := oltpsim.BaseConfig(8, 8*oltpsim.MB, 1)
	full := oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8)

	oltpBase, oltpFull := runOLTP(base), runOLTP(full)
	dssBase, dssFull := runDSS(base), runDSS(full)

	fmt.Println("Chip-level integration: Base (off-chip, 8M 1-way) -> Full (on-chip 2M 8-way):")
	fmt.Printf("  OLTP: %7.0f -> %7.0f cycles/txn   speedup %.2fx\n",
		oltpBase.CyclesPerTxn(), oltpFull.CyclesPerTxn(), oltpFull.Speedup(&oltpBase))
	fmt.Printf("  DSS:  %7.0f -> %7.0f cycles/unit  speedup %.2fx\n",
		dssBase.CyclesPerTxn(), dssFull.CyclesPerTxn(), dssFull.Speedup(&dssBase))

	fmt.Printf("\nmiss profile under full integration (per work unit):\n")
	fmt.Printf("  OLTP: %5.1f misses (%.0f%% dirty 3-hop)\n", oltpFull.MissesPerTxn(),
		100*float64(oltpFull.Miss.RemoteDirty())/float64(max(1, oltpFull.Miss.Total())))
	fmt.Printf("  DSS:  %5.1f misses (%.0f%% dirty 3-hop)\n", dssFull.MissesPerTxn(),
		100*float64(dssFull.Miss.RemoteDirty())/float64(max(1, dssFull.Miss.Total())))

	fmt.Println("\nOLTP's gains come from communication misses and L2 hit latency; the")
	fmt.Println("scan workload streams read-only data, so integration has little to buy.")
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
