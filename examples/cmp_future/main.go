// cmp_future explores the paper's concluding proposal: "Once memory system
// latencies are reduced through integration, the next logical step seems to
// be to tolerate the remaining latencies by exploiting the inherent
// thread-level parallelism in OLTP through techniques such as chip
// multiprocessing". The example arranges the same 8 cores as 8x1, 4x2 and
// 2x4 fully integrated chips and shows how cores sharing an L2 absorb
// intra-chip communication misses.
//
//	go run ./examples/cmp_future
package main

import (
	"fmt"

	"oltpsim"
)

func main() {
	opt := oltpsim.QuickOptions()
	opt.MeasureTxns = 600

	fmt.Println("8 OLTP cores, fully integrated chips with shared 2 MB 8-way L2s:")
	fmt.Printf("%-18s %12s %16s %14s\n", "arrangement", "cycles/txn", "remote miss/txn", "3-hop/txn")
	var first float64
	for _, perChip := range []int{1, 2, 4} {
		cfg := oltpsim.FullIntegrationConfig(8, 2*oltpsim.MB, 8)
		cfg.CoresPerChip = perChip
		cfg.Name = fmt.Sprintf("%d chips x %d cores", 8/perChip, perChip)
		res := opt.Run(cfg)
		remote := float64(res.Miss.RemoteClean()+res.Miss.RemoteDirty()) / float64(max(1, res.Txns))
		dirty := float64(res.Miss.RemoteDirty()) / float64(max(1, res.Txns))
		fmt.Printf("%-18s %12.0f %16.1f %14.1f", cfg.Name, res.CyclesPerTxn(), remote, dirty)
		if first == 0 {
			first = res.CyclesPerTxn()
			fmt.Println()
		} else {
			fmt.Printf("   (%.2fx vs 8x1)\n", first/res.CyclesPerTxn())
		}
	}
	fmt.Println("\nSharing an L2 turns the hottest migratory lines (latches, buffer")
	fmt.Println("headers, branch rows) from 3-hop coherence misses into L2 hits for")
	fmt.Println("the cores on the same chip — the paper's CMP intuition, quantified.")
}
